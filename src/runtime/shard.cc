#include "src/runtime/shard.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/common/error.h"
#include "src/runtime/accumulate.h"

namespace ihbd::runtime::shard {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof v); }

void fnv_str(std::uint64_t& h, std::string_view s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

void fnv_f64(std::uint64_t& h, double v) {
  // Hash the bit pattern: NaN labels on categorical axes hash stably, and
  // +0.0 / -0.0 are distinct specs on purpose (they are distinct inputs).
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  fnv_u64(h, bits);
}

std::atomic<ShardContext*> g_context{nullptr};

}  // namespace

std::uint64_t spec_fingerprint(const SweepSpec& spec) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, spec.seed);
  fnv_u64(h, static_cast<std::uint64_t>(spec.trials));
  fnv_u64(h, spec.keep_samples ? 1 : 0);
  fnv_u64(h, spec.fingerprint_salt);
  fnv_u64(h, spec.axes.size());
  for (const Axis& axis : spec.axes) {
    fnv_str(h, axis.name);
    fnv_u64(h, axis.labels.size());
    for (const std::string& label : axis.labels) fnv_str(h, label);
    for (const double v : axis.values) fnv_f64(h, v);
  }
  return h;
}

ShardPlan plan_shards(const SweepSpec& spec, const PlanPolicy& policy) {
  detail::validate_spec(spec);
  if (policy.max_shards == 0) {
    throw ConfigError("plan_shards: max_shards must be >= 1");
  }
  ShardPlan plan;
  plan.spec_hash = spec_fingerprint(spec);
  std::uint64_t ph = plan.spec_hash;
  fnv_u64(ph, policy.max_shards);
  fnv_u64(ph, policy.split_trials ? 1 : 0);
  plan.plan_hash = ph;
  plan.cell_count = spec.cell_count();
  plan.trials = spec.trials;

  const std::size_t cells = plan.cell_count;
  if (!policy.split_trials || cells >= policy.max_shards) {
    // Whole-cell shards: contiguous ranges balanced to within one cell
    // (the first `cells % n` shards take one extra).
    const std::size_t n = std::min(policy.max_shards, cells);
    const std::size_t base = cells / n;
    const std::size_t extra = cells % n;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ShardSpec s;
      s.index = i;
      s.cell_begin = begin;
      s.cell_end = begin + base + (i < extra ? 1 : 0);
      s.trial_begin = 0;
      s.trial_end = spec.trials;
      begin = s.cell_end;
      plan.shards.push_back(s);
    }
  } else {
    // Fewer cells than shards and trial-splitting allowed: give every cell
    // floor(max_shards / cells) shards (the first `max_shards % cells`
    // cells one more), each a contiguous trial range balanced to within
    // one trial. Cells with fewer trials than slots collapse to one shard
    // per trial.
    const std::size_t slots_base = policy.max_shards / cells;
    const std::size_t slots_extra = policy.max_shards % cells;
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const std::size_t want = slots_base + (cell < slots_extra ? 1 : 0);
      const std::size_t pieces =
          std::min(want, static_cast<std::size_t>(spec.trials));
      const int base = spec.trials / static_cast<int>(pieces);
      const int extra = spec.trials % static_cast<int>(pieces);
      int t = 0;
      for (std::size_t p = 0; p < pieces; ++p) {
        ShardSpec s;
        s.index = plan.shards.size();
        s.cell_begin = cell;
        s.cell_end = cell + 1;
        s.trial_begin = t;
        s.trial_end = t + base + (static_cast<int>(p) < extra ? 1 : 0);
        t = s.trial_end;
        plan.shards.push_back(s);
      }
    }
  }
  for (ShardSpec& s : plan.shards) {
    std::uint64_t id = plan.plan_hash;
    fnv_u64(id, s.index);
    s.id = id;
  }
  return plan;
}

std::string shard_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

const ShardCodec<Accumulator>& accumulator_codec() {
  static const ShardCodec<Accumulator> codec{
      [](serde::Writer& w, const Accumulator& acc) { acc.save(w); },
      [](serde::Reader& r) { return Accumulator::load(r); },
      [](Accumulator& into, Accumulator&& next) { into.merge(next); },
  };
  return codec;
}

std::string encode_shard_payload(const ShardPayload& payload) {
  serde::Writer w;
  w.u64(payload.plan_hash);
  w.u64(payload.shard_id);
  w.u64(payload.shard_index);
  w.u64(payload.entries.size());
  for (const ShardPayloadEntry& e : payload.entries) {
    w.u64(e.cell);
    w.u64(static_cast<std::uint64_t>(e.trial_begin));
    w.u64(static_cast<std::uint64_t>(e.trial_end));
    w.str(e.acc_bytes);
  }
  w.str(payload.metrics);
  return w.take();
}

ShardPayload decode_shard_payload(std::string_view bytes) {
  serde::Reader r(bytes);
  ShardPayload payload;
  payload.plan_hash = r.u64();
  payload.shard_id = r.u64();
  payload.shard_index = static_cast<std::size_t>(r.u64());
  const std::uint64_t n = r.u64();
  payload.entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ShardPayloadEntry e;
    e.cell = static_cast<std::size_t>(r.u64());
    e.trial_begin = static_cast<int>(r.u64());
    e.trial_end = static_cast<int>(r.u64());
    e.acc_bytes = r.str();
    payload.entries.push_back(std::move(e));
  }
  payload.metrics = r.str();
  r.expect_done("shard payload");
  return payload;
}

ShardContext* context() { return g_context.load(std::memory_order_acquire); }

void set_context(ShardContext* ctx) {
  g_context.store(ctx, std::memory_order_release);
}

}  // namespace ihbd::runtime::shard
