// Declarative parallel Monte-Carlo sweep engine.
//
// Every evaluation in the paper is a sweep: a grid of scenario axes
// (fault ratio x TP size x architecture x ...) with many random trials per
// grid cell. This engine replaces the hand-rolled serial loops of the bench
// binaries with one declarative API:
//
//   SweepSpec spec;
//   spec.seed = 14;
//   spec.trials = 200;
//   spec.axes = {Axis::of_values("Fault ratio", {0.0, 0.01, 0.05}),
//                Axis::of_labels("Arch", {"IHBD", "NVL-72"})};
//   SweepResult res = run_sweep(spec, trial_fn, threads);
//
// run_sweep fans the cells across a ThreadPool. Each (cell, trial) pair
// draws from its own RNG substream derived from (spec.seed, global trial
// index), so the result is bit-identical for any thread count and any
// execution order; trials within one cell always accumulate in trial
// order. A trial may return NaN to mark its cell "not applicable" (e.g. an
// architecture that cannot host the requested TP size); such cells stay
// empty and reports skip them.
//
// The scalar path above is a thin adapter over the generic engine,
// run_sweep_reduce: trials may return ANY result type, folded in trial
// order into a user-supplied per-cell accumulator. That is how the
// trace-replay benches carry a full TraceWasteResult (time series +
// summary) per grid cell instead of one double per trial:
//
//   auto res = run_sweep_reduce<ReplayAcc>(spec, ReplayAcc{},
//       [&](const Scenario& s, Rng& rng) { return replay(s, rng); },
//       [](ReplayAcc& acc, ReplayFragment&& f) { acc.merge(std::move(f)); },
//       threads);
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/accumulate.h"
#include "src/runtime/thread_pool.h"

namespace ihbd::runtime {

/// One scenario-grid dimension: a name plus per-level labels and optional
/// numeric values (values are NaN for purely categorical axes).
struct Axis {
  std::string name;
  std::vector<std::string> labels;
  std::vector<double> values;

  /// Numeric axis; labels default to Table-style fixed-precision rendering
  /// unless a label_fn is supplied.
  static Axis of_values(std::string name, std::vector<double> values,
                        const std::function<std::string(double)>& label_fn = {});
  /// Categorical axis (architectures, model names, ...).
  static Axis of_labels(std::string name, std::vector<std::string> labels);

  std::size_t size() const { return labels.size(); }
};

struct SweepSpec {
  std::uint64_t seed = 0;
  int trials = 1;            ///< Monte-Carlo trials per grid cell.
  std::vector<Axis> axes;    ///< row-major: last axis varies fastest.
  bool keep_samples = true;  ///< retain per-trial samples (percentiles).

  std::size_t cell_count() const;
  /// Index of the axis with the given name; aborts if absent.
  std::size_t axis_index(std::string_view name) const;
};

/// View of one (cell, trial) handed to the trial function.
class Scenario {
 public:
  Scenario(const SweepSpec& spec, std::size_t cell,
           const std::vector<std::size_t>& idx, int trial)
      : spec_(&spec), cell_(cell), idx_(&idx), trial_(trial) {}

  std::size_t cell() const { return cell_; }
  int trial() const { return trial_; }
  const SweepSpec& spec() const { return *spec_; }
  /// Per-axis level index / numeric value / label.
  std::size_t index(std::size_t axis) const { return (*idx_)[axis]; }
  double value(std::size_t axis) const {
    return spec_->axes[axis].values[index(axis)];
  }
  const std::string& label(std::size_t axis) const {
    return spec_->axes[axis].labels[index(axis)];
  }

 private:
  const SweepSpec* spec_;
  std::size_t cell_;
  const std::vector<std::size_t>* idx_;
  int trial_;
};

/// Row-major flat index of a per-axis level tuple.
std::size_t flat_cell_index(const SweepSpec& spec,
                            const std::vector<std::size_t>& idx);

/// Outcome of a sweep: one accumulator of user-chosen type per grid cell,
/// row-major in the axis order of the spec.
template <typename Acc>
struct GenericSweepResult {
  SweepSpec spec;
  std::vector<Acc> cells;

  std::size_t flat_index(const std::vector<std::size_t>& idx) const {
    return flat_cell_index(spec, idx);
  }
  const Acc& cell(const std::vector<std::size_t>& idx) const {
    return cells[flat_index(idx)];
  }
};

/// Scalar sweeps reduce into the mergeable moments Accumulator.
using SweepResult = GenericSweepResult<Accumulator>;

/// One Monte-Carlo trial: observe the scenario, draw from rng, return the
/// sample (NaN = cell not applicable).
using TrialFn = std::function<double(const Scenario&, Rng&)>;

/// The RNG substream of one (cell, trial) pair: O(1), order-independent,
/// shared by the scalar and generic engines (and usable by callers that
/// need to re-materialize a trial's stream, e.g. for resume or debugging).
Rng trial_rng(const SweepSpec& spec, std::size_t cell, int trial);

namespace detail {
/// Abort on malformed specs (no axes, empty axis, label/value mismatch).
void validate_spec(const SweepSpec& spec);
/// Decode a row-major flat cell index into per-axis levels.
std::vector<std::size_t> decode_cell(const SweepSpec& spec, std::size_t cell);

/// Sweep-engine metrics (src/obs): cells/trials completed and per-cell wall
/// time. Handles are interned once; recording is skipped unless obs is
/// enabled, so the engine's determinism and throughput are untouched.
struct SweepObs {
  obs::Counter& cells;
  obs::Counter& trials;
  obs::Counter& cell_ns;
  obs::Histogram& cell_seconds;
};
inline SweepObs& sweep_obs() {
  static SweepObs o{obs::counter("sweep.cells"), obs::counter("sweep.trials"),
                    obs::counter("sweep.cell_ns"),
                    obs::histogram("sweep.cell_seconds")};
  return o;
}
}  // namespace detail

/// Generic reduce engine: run every (cell, trial) on a thread pool and fold
/// each trial's result into that cell's accumulator, strictly in trial
/// order within a cell. `init` seeds every cell (copied). `fold` is invoked
/// as fold(acc, result) or, if it accepts a third parameter,
/// fold(acc, result, scenario). Cells are distributed dynamically; because
/// every trial draws from its own substream and folds in trial order,
/// results are bit-identical for any thread count.
///
/// Execution substrate: an explicit `pool` wins (pass the SAME pool into
/// any nested fan-out inside the trial — e.g. TraceReplayOptions::pool — so
/// the work-stealing scheduler lets a cell's inner parallelism recruit idle
/// sweep workers). With pool == nullptr, threads == 0 fans out on the
/// process-wide ThreadPool::shared(); threads > 0 uses a dedicated
/// transient pool of that width.
template <typename Acc, typename Trial, typename Fold>
GenericSweepResult<Acc> run_sweep_reduce(const SweepSpec& spec, Acc init,
                                         Trial&& trial, Fold&& fold,
                                         int threads = 0,
                                         ThreadPool* pool = nullptr) {
  detail::validate_spec(spec);
  GenericSweepResult<Acc> result;
  result.spec = spec;
  result.cells.assign(spec.cell_count(), std::move(init));
  const PoolRef pool_ref(threads, pool);
  pool_ref->parallel_for(result.cells.size(), [&](std::size_t cell) {
    IHBD_TRACE_SPAN("sweep_cell");
    const bool obs_on = obs::enabled();
    const auto t0 = obs_on ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    const std::vector<std::size_t> idx = detail::decode_cell(spec, cell);
    Acc& acc = result.cells[cell];
    for (int t = 0; t < spec.trials; ++t) {
      Rng rng = trial_rng(spec, cell, t);
      const Scenario scenario(spec, cell, idx, t);
      if constexpr (std::is_invocable_v<Fold&, Acc&,
                                        decltype(trial(scenario, rng)),
                                        const Scenario&>) {
        fold(acc, trial(scenario, rng), scenario);
      } else {
        fold(acc, trial(scenario, rng));
      }
    }
    if (obs_on) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      detail::SweepObs& o = detail::sweep_obs();
      o.cells.add(1);
      o.trials.add(static_cast<std::uint64_t>(spec.trials));
      o.cell_ns.add(static_cast<std::uint64_t>(ns));
      o.cell_seconds.observe(static_cast<double>(ns) * 1e-9);
    }
  });
  return result;
}

/// Scalar sweep: a thin adapter over run_sweep_reduce with an Accumulator
/// per cell (NaN results leave the cell untouched). Bit-identical to the
/// pre-generic engine for any thread count; same pool/threads resolution as
/// run_sweep_reduce.
SweepResult run_sweep(const SweepSpec& spec, const TrialFn& fn,
                      int threads = 0, ThreadPool* pool = nullptr);

}  // namespace ihbd::runtime
