// Declarative parallel Monte-Carlo sweep engine.
//
// Every evaluation in the paper is a sweep: a grid of scenario axes
// (fault ratio x TP size x architecture x ...) with many random trials per
// grid cell. This engine replaces the hand-rolled serial loops of the bench
// binaries with one declarative API:
//
//   SweepSpec spec;
//   spec.seed = 14;
//   spec.trials = 200;
//   spec.axes = {Axis::of_values("Fault ratio", {0.0, 0.01, 0.05}),
//                Axis::of_labels("Arch", {"IHBD", "NVL-72"})};
//   SweepResult res = run_sweep(spec, trial_fn, threads);
//
// The engine is a plan -> execute -> reduce pipeline with a serializable
// boundary between the stages (src/runtime/shard.h):
//
//   plan    — shard::plan_shards partitions the grid into ShardSpecs,
//             deterministically from the spec alone.
//   execute — each shard's cells run on a work-stealing ThreadPool; each
//             (cell, trial) pair draws from its own RNG substream derived
//             from (spec.seed, global trial index), so the result is
//             bit-identical for any thread count, execution order, shard
//             count, or kill/resume history; trials within one cell always
//             accumulate in trial order. Sharded executors serialize
//             per-cell state through a ShardCodec and periodically persist
//             versioned, checksummed checkpoints (src/runtime/checkpoint.h)
//             so a killed worker resumes mid-shard.
//   reduce  — shard results fold back into the grid, order-respecting.
//
// The single-process path is the degenerate one-shard plan executed in
// place: no serialization, no files, byte-identical to the pre-pipeline
// engine. The distributed path engages only when BOTH an ambient
// shard::ShardContext is installed (bench_util --shard-dir) AND the caller
// passes a ShardCodec — sweeps without a codec always run locally.
//
// A trial may return NaN to mark its cell "not applicable" (e.g. an
// architecture that cannot host the requested TP size); such cells stay
// empty and reports skip them.
//
// The scalar path above is a thin adapter over the generic engine,
// run_sweep_reduce: trials may return ANY result type, folded in trial
// order into a user-supplied per-cell accumulator. That is how the
// trace-replay benches carry a full TraceWasteResult (time series +
// summary) per grid cell instead of one double per trial:
//
//   auto res = run_sweep_reduce<ReplayAcc>(spec, ReplayAcc{},
//       [&](const Scenario& s, Rng& rng) { return replay(s, rng); },
//       [](ReplayAcc& acc, ReplayFragment&& f) { acc.merge(std::move(f)); },
//       threads);
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/accumulate.h"
#include "src/runtime/checkpoint.h"
#include "src/runtime/shard.h"
#include "src/runtime/sweep_spec.h"
#include "src/runtime/thread_pool.h"

namespace ihbd::runtime {

/// Outcome of a sweep: one accumulator of user-chosen type per grid cell,
/// row-major in the axis order of the spec.
template <typename Acc>
struct GenericSweepResult {
  SweepSpec spec;
  std::vector<Acc> cells;

  std::size_t flat_index(const std::vector<std::size_t>& idx) const {
    return flat_cell_index(spec, idx);
  }
  const Acc& cell(const std::vector<std::size_t>& idx) const {
    return cells[flat_index(idx)];
  }
};

/// Scalar sweeps reduce into the mergeable moments Accumulator.
using SweepResult = GenericSweepResult<Accumulator>;

/// One Monte-Carlo trial: observe the scenario, draw from rng, return the
/// sample (NaN = cell not applicable).
using TrialFn = std::function<double(const Scenario&, Rng&)>;

namespace detail {

/// Sweep-engine metrics (src/obs): cells/trials completed and per-cell wall
/// time. Handles are interned once; recording is skipped unless obs is
/// enabled, so the engine's determinism and throughput are untouched.
struct SweepObs {
  obs::Counter& cells;
  obs::Counter& trials;
  obs::Counter& cell_ns;
  obs::Histogram& cell_seconds;
};
inline SweepObs& sweep_obs() {
  static SweepObs o{obs::counter("sweep.cells"), obs::counter("sweep.trials"),
                    obs::counter("sweep.cell_ns"),
                    obs::histogram("sweep.cell_seconds")};
  return o;
}

/// The execute stage's inner loop: fold trials [trial_begin, trial_end) of
/// one cell into `acc`, strictly in trial order. Every execution path —
/// local, sharded, resumed — funnels through here, which is what makes
/// them bit-interchangeable.
template <typename Acc, typename Trial, typename Fold>
void run_cell_into(const SweepSpec& spec, std::size_t cell, int trial_begin,
                   int trial_end, Acc& acc, Trial& trial, Fold& fold) {
  IHBD_TRACE_SPAN("sweep_cell");
  const bool obs_on = obs::enabled();
  const auto t0 = obs_on ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  const std::vector<std::size_t> idx = decode_cell(spec, cell);
  for (int t = trial_begin; t < trial_end; ++t) {
    Rng rng = trial_rng(spec, cell, t);
    const Scenario scenario(spec, cell, idx, t);
    if constexpr (std::is_invocable_v<Fold&, Acc&,
                                      decltype(trial(scenario, rng)),
                                      const Scenario&>) {
      fold(acc, trial(scenario, rng), scenario);
    } else {
      fold(acc, trial(scenario, rng));
    }
  }
  if (obs_on) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    SweepObs& o = sweep_obs();
    o.cells.add(1);
    o.trials.add(static_cast<std::uint64_t>(trial_end - trial_begin));
    o.cell_ns.add(static_cast<std::uint64_t>(ns));
    o.cell_seconds.observe(static_cast<double>(ns) * 1e-9);
  }
}

/// Execute one shard directly into the result grid (the local path: no
/// serialization boundary). Scheduling is identical to the pre-pipeline
/// engine: one parallel_for index per cell of the shard.
template <typename Acc, typename Trial, typename Fold>
void execute_shard_into(const SweepSpec& spec, const shard::ShardSpec& sh,
                        std::vector<Acc>& cells, Trial& trial, Fold& fold,
                        const PoolRef& pool_ref) {
  pool_ref->parallel_for(sh.cells(), [&](std::size_t i) {
    const std::size_t cell = sh.cell_begin + i;
    run_cell_into(spec, cell, sh.trial_begin, sh.trial_end, cells[cell],
                  trial, fold);
  });
}

/// Execute one shard durably: resume completed cells from the newest valid
/// checkpoint generation, run the rest on the pool, persist a checkpoint
/// every checkpoint_every() completions, and return the complete encoded
/// ShardPayload. Completed cells are held serialized (codec bytes), so a
/// checkpoint is a pure concatenation and resume needs no re-execution.
template <typename Acc, typename Trial, typename Fold>
std::string execute_shard_durable(const SweepSpec& spec,
                                  const shard::ShardPlan& plan,
                                  const shard::ShardSpec& sh, const Acc& init,
                                  Trial& trial, Fold& fold,
                                  const shard::ShardCodec<Acc>& codec,
                                  shard::ShardContext& ctx,
                                  const PoolRef& pool_ref) {
  const std::string ckpt_path = ctx.checkpoint_path(sh.index);
  std::vector<std::optional<std::string>> done(sh.cells());

  if (!ckpt_path.empty()) {
    const checkpoint::Recovered rec = checkpoint::load_with_fallback(ckpt_path);
    if (rec.valid) {
      try {
        shard::ShardPayload saved = shard::decode_shard_payload(rec.payload);
        // A checkpoint from another plan (or another shard of this plan —
        // path collisions across runs) must not leak cells into this one.
        if (saved.plan_hash == plan.plan_hash && saved.shard_id == sh.id) {
          for (shard::ShardPayloadEntry& e : saved.entries) {
            if (e.cell >= sh.cell_begin && e.cell < sh.cell_end &&
                e.trial_begin == sh.trial_begin &&
                e.trial_end == sh.trial_end) {
              done[e.cell - sh.cell_begin] = std::move(e.acc_bytes);
            }
          }
          if (!saved.metrics.empty()) ctx.note_resumed_metrics(saved.metrics);
        }
      } catch (const ConfigError&) {
        // Frame was valid but the payload didn't decode: version skew.
        // Start the shard from scratch rather than trusting it.
      }
    }
  }

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < done.size(); ++i) {
    if (!done[i].has_value()) pending.push_back(i);
  }

  auto build_payload = [&](bool with_metrics) {
    shard::ShardPayload payload;
    payload.plan_hash = plan.plan_hash;
    payload.shard_id = sh.id;
    payload.shard_index = sh.index;
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (!done[i].has_value()) continue;
      shard::ShardPayloadEntry e;
      e.cell = sh.cell_begin + i;
      e.trial_begin = sh.trial_begin;
      e.trial_end = sh.trial_end;
      e.acc_bytes = *done[i];
      payload.entries.push_back(std::move(e));
    }
    if (with_metrics && obs::enabled()) {
      serde::Writer mw;
      obs::snapshot().save(mw);
      payload.metrics = mw.take();
    }
    return shard::encode_shard_payload(payload);
  };

  std::mutex mu;
  std::size_t since_checkpoint = 0;
  const std::size_t every = std::max<std::size_t>(1, ctx.checkpoint_every());
  pool_ref->parallel_for(pending.size(), [&](std::size_t k) {
    const std::size_t i = pending[k];
    const std::size_t cell = sh.cell_begin + i;
    Acc acc = init;
    run_cell_into(spec, cell, sh.trial_begin, sh.trial_end, acc, trial, fold);
    serde::Writer w;
    codec.save(w, acc);
    std::lock_guard<std::mutex> lock(mu);
    done[i] = w.take();
    ctx.note_progress(sh.index);
    if (!ckpt_path.empty() && ++since_checkpoint >= every) {
      since_checkpoint = 0;
      checkpoint::write(ckpt_path, build_payload(/*with_metrics=*/true));
    }
  });

  return build_payload(/*with_metrics=*/true);
}

/// The reduce stage: validate and fold shard payloads (in plan order) back
/// into the result grid. Whole-cell entries are placed directly — a
/// deserialize of exactly the bytes the executor serialized, hence
/// bit-identical to local execution. When a plan split one cell's trials,
/// the partial accumulators are combined with an order-respecting tree
/// merge (adjacent pairs, trial order preserved at every level).
template <typename Acc>
void reduce_shard_payloads(const shard::ShardPlan& plan,
                           const std::vector<std::string>& payloads,
                           const shard::ShardCodec<Acc>& codec,
                           std::vector<Acc>& cells) {
  if (payloads.size() != plan.shards.size()) {
    throw ConfigError("sweep reduce: expected " +
                      std::to_string(plan.shards.size()) + " shard results, got " +
                      std::to_string(payloads.size()));
  }
  std::vector<int> next_trial(cells.size(), 0);
  std::vector<std::vector<Acc>> parts(cells.size());
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    const shard::ShardSpec& sh = plan.shards[i];
    shard::ShardPayload payload = shard::decode_shard_payload(payloads[i]);
    if (payload.plan_hash != plan.plan_hash || payload.shard_id != sh.id ||
        payload.shard_index != sh.index) {
      throw ConfigError("sweep reduce: shard result " + std::to_string(i) +
                        " does not match the plan");
    }
    if (payload.entries.size() != sh.cells()) {
      throw ConfigError("sweep reduce: shard " + std::to_string(i) +
                        " result is incomplete");
    }
    for (shard::ShardPayloadEntry& e : payload.entries) {
      if (e.cell < sh.cell_begin || e.cell >= sh.cell_end ||
          e.trial_begin != sh.trial_begin || e.trial_end != sh.trial_end) {
        throw ConfigError("sweep reduce: shard " + std::to_string(i) +
                          " entry outside its shard range");
      }
      if (e.trial_begin != next_trial[e.cell]) {
        throw ConfigError("sweep reduce: non-contiguous trial coverage for "
                          "cell " + std::to_string(e.cell));
      }
      next_trial[e.cell] = e.trial_end;
      serde::Reader r(e.acc_bytes);
      parts[e.cell].push_back(codec.load(r));
      r.expect_done("shard accumulator");
    }
  }
  for (std::size_t cell = 0; cell < cells.size(); ++cell) {
    if (next_trial[cell] != plan.trials) {
      throw ConfigError("sweep reduce: cell " + std::to_string(cell) +
                        " not fully covered by shard results");
    }
    std::vector<Acc>& v = parts[cell];
    if (v.size() > 1 && !codec.merge) {
      throw ConfigError("sweep reduce: trial-split plan needs a codec with "
                        "merge()");
    }
    while (v.size() > 1) {
      std::vector<Acc> merged;
      merged.reserve((v.size() + 1) / 2);
      for (std::size_t i = 0; i < v.size(); i += 2) {
        if (i + 1 < v.size()) codec.merge(v[i], std::move(v[i + 1]));
        merged.push_back(std::move(v[i]));
      }
      v = std::move(merged);
    }
    cells[cell] = std::move(v.front());
  }
}

/// The distributed composition: plan from the spec, claim-and-execute
/// shards through the transport until none are claimable, then poll for
/// the full result set and reduce. Every participant (worker or
/// coordinator) converges on the identical result grid.
template <typename Acc, typename Trial, typename Fold>
GenericSweepResult<Acc> run_sweep_sharded(const SweepSpec& spec, Acc init,
                                          Trial& trial, Fold& fold,
                                          const shard::ShardCodec<Acc>& codec,
                                          shard::ShardContext& ctx,
                                          int threads, ThreadPool* pool) {
  const shard::ShardPlan plan = shard::plan_shards(spec, ctx.policy());
  ctx.begin_sweep(plan);
  struct EndGuard {
    shard::ShardContext& ctx;
    ~EndGuard() { ctx.end_sweep(); }
  } guard{ctx};

  const PoolRef pool_ref(threads, pool);
  std::vector<std::string> payloads;
  for (;;) {
    bool progressed = false;
    if (ctx.executes()) {
      while (const std::optional<std::size_t> claimed = ctx.claim()) {
        progressed = true;
        const shard::ShardSpec& sh = plan.shards[*claimed];
        try {
          std::string payload = execute_shard_durable(
              spec, plan, sh, init, trial, fold, codec, ctx, pool_ref);
          ctx.publish_result(*claimed, std::move(payload));
        } catch (...) {
          ctx.release(*claimed);
          throw;
        }
      }
    }
    if (std::optional<std::vector<std::string>> all = ctx.try_collect()) {
      payloads = std::move(*all);
      break;
    }
    // Keep alternating claim and collect: a shard whose owner died becomes
    // claimable again once its lease goes stale, and this participant must
    // pick it up rather than wait forever.
    if (!progressed) ctx.poll_wait();
  }

  GenericSweepResult<Acc> result;
  result.spec = spec;
  result.cells.assign(spec.cell_count(), std::move(init));
  reduce_shard_payloads(plan, payloads, codec, result.cells);
  return result;
}

}  // namespace detail

/// Generic reduce engine: run every (cell, trial) on a thread pool and fold
/// each trial's result into that cell's accumulator, strictly in trial
/// order within a cell. `init` seeds every cell (copied). `fold` is invoked
/// as fold(acc, result) or, if it accepts a third parameter,
/// fold(acc, result, scenario). Cells are distributed dynamically; because
/// every trial draws from its own substream and folds in trial order,
/// results are bit-identical for any thread count.
///
/// Execution substrate: an explicit `pool` wins (pass the SAME pool into
/// any nested fan-out inside the trial — e.g. TraceReplayOptions::pool — so
/// the work-stealing scheduler lets a cell's inner parallelism recruit idle
/// sweep workers). With pool == nullptr, threads == 0 fans out on the
/// process-wide ThreadPool::shared(); threads > 0 uses a dedicated
/// transient pool of that width.
///
/// Distribution: when an ambient shard::ShardContext is installed
/// (bench_util --shard-dir) AND `codec` is non-null, the sweep runs as
/// plan -> claim/execute -> reduce across every participating process,
/// returning the identical result grid in each. Without a codec (or
/// without a context) the sweep runs locally as the degenerate one-shard
/// plan — byte-identical to the distributed result.
template <typename Acc, typename Trial, typename Fold>
GenericSweepResult<Acc> run_sweep_reduce(
    const SweepSpec& spec, Acc init, Trial&& trial, Fold&& fold,
    int threads = 0, ThreadPool* pool = nullptr,
    const shard::ShardCodec<Acc>* codec = nullptr) {
  detail::validate_spec(spec);
  if (shard::ShardContext* ctx = shard::context();
      ctx != nullptr && codec != nullptr) {
    return detail::run_sweep_sharded(spec, std::move(init), trial, fold,
                                     *codec, *ctx, threads, pool);
  }
  GenericSweepResult<Acc> result;
  result.spec = spec;
  result.cells.assign(spec.cell_count(), std::move(init));
  const shard::ShardPlan plan =
      shard::plan_shards(spec, shard::PlanPolicy{.max_shards = 1});
  const PoolRef pool_ref(threads, pool);
  detail::execute_shard_into(spec, plan.shards.front(), result.cells, trial,
                             fold, pool_ref);
  return result;
}

/// Scalar sweep: a thin adapter over run_sweep_reduce with an Accumulator
/// per cell (NaN results leave the cell untouched). Bit-identical to the
/// pre-generic engine for any thread count; same pool/threads resolution as
/// run_sweep_reduce. Shardable out of the box (shard::accumulator_codec).
SweepResult run_sweep(const SweepSpec& spec, const TrialFn& fn,
                      int threads = 0, ThreadPool* pool = nullptr);

}  // namespace ihbd::runtime
