// Declarative parallel Monte-Carlo sweep engine.
//
// Every evaluation in the paper is a sweep: a grid of scenario axes
// (fault ratio x TP size x architecture x ...) with many random trials per
// grid cell. This engine replaces the hand-rolled serial loops of the bench
// binaries with one declarative API:
//
//   SweepSpec spec;
//   spec.seed = 14;
//   spec.trials = 200;
//   spec.axes = {Axis::of_values("Fault ratio", {0.0, 0.01, 0.05}),
//                Axis::of_labels("Arch", {"IHBD", "NVL-72"})};
//   SweepResult res = run_sweep(spec, trial_fn, threads);
//
// run_sweep fans the cells across a ThreadPool. Each (cell, trial) pair
// draws from its own RNG substream derived from (spec.seed, global trial
// index), so the result is bit-identical for any thread count and any
// execution order; trials within one cell always accumulate in trial
// order. A trial may return NaN to mark its cell "not applicable" (e.g. an
// architecture that cannot host the requested TP size); such cells stay
// empty and reports skip them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"

namespace ihbd::runtime {

/// One scenario-grid dimension: a name plus per-level labels and optional
/// numeric values (values are NaN for purely categorical axes).
struct Axis {
  std::string name;
  std::vector<std::string> labels;
  std::vector<double> values;

  /// Numeric axis; labels default to Table-style fixed-precision rendering
  /// unless a label_fn is supplied.
  static Axis of_values(std::string name, std::vector<double> values,
                        const std::function<std::string(double)>& label_fn = {});
  /// Categorical axis (architectures, model names, ...).
  static Axis of_labels(std::string name, std::vector<std::string> labels);

  std::size_t size() const { return labels.size(); }
};

struct SweepSpec {
  std::uint64_t seed = 0;
  int trials = 1;            ///< Monte-Carlo trials per grid cell.
  std::vector<Axis> axes;    ///< row-major: last axis varies fastest.
  bool keep_samples = true;  ///< retain per-trial samples (percentiles).

  std::size_t cell_count() const;
  /// Index of the axis with the given name; aborts if absent.
  std::size_t axis_index(std::string_view name) const;
};

/// View of one (cell, trial) handed to the trial function.
class Scenario {
 public:
  Scenario(const SweepSpec& spec, std::size_t cell,
           const std::vector<std::size_t>& idx, int trial)
      : spec_(&spec), cell_(cell), idx_(&idx), trial_(trial) {}

  std::size_t cell() const { return cell_; }
  int trial() const { return trial_; }
  /// Per-axis level index / numeric value / label.
  std::size_t index(std::size_t axis) const { return (*idx_)[axis]; }
  double value(std::size_t axis) const {
    return spec_->axes[axis].values[index(axis)];
  }
  const std::string& label(std::size_t axis) const {
    return spec_->axes[axis].labels[index(axis)];
  }

 private:
  const SweepSpec* spec_;
  std::size_t cell_;
  const std::vector<std::size_t>* idx_;
  int trial_;
};

/// Mergeable running statistics over trial samples: count/mean/M2 (Welford)
/// plus min/max, optionally retaining the raw samples so Summary
/// percentiles are available. merge() is associative up to floating-point
/// rounding, enabling tree reductions over partial sweeps.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Full Summary. Percentiles require retained samples; without them the
  /// percentile fields are left at the mean (documented approximation).
  Summary summary() const;

  void set_keep_samples(bool keep) { keep_samples_ = keep; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  bool keep_samples_ = true;
  std::vector<double> samples_;
};

/// Outcome of a sweep: one Accumulator per grid cell, row-major.
struct SweepResult {
  SweepSpec spec;
  std::vector<Accumulator> cells;

  std::size_t flat_index(const std::vector<std::size_t>& idx) const;
  const Accumulator& cell(const std::vector<std::size_t>& idx) const {
    return cells[flat_index(idx)];
  }
};

/// One Monte-Carlo trial: observe the scenario, draw from rng, return the
/// sample (NaN = cell not applicable).
using TrialFn = std::function<double(const Scenario&, Rng&)>;

/// Run the sweep on `threads` workers (0 = hardware concurrency). Cells are
/// distributed dynamically; results are bit-identical for any thread count.
SweepResult run_sweep(const SweepSpec& spec, const TrialFn& fn,
                      int threads = 0);

}  // namespace ihbd::runtime
