#include "src/runtime/sweep.h"

#include <cmath>

#include "src/common/contracts.h"
#include "src/common/table.h"
#include "src/runtime/substream.h"
#include "src/runtime/thread_pool.h"

namespace ihbd::runtime {

Axis Axis::of_values(std::string name, std::vector<double> values,
                     const std::function<std::string(double)>& label_fn) {
  Axis axis;
  axis.name = std::move(name);
  axis.labels.reserve(values.size());
  for (const double v : values)
    axis.labels.push_back(label_fn ? label_fn(v) : Table::fmt(v));
  axis.values = std::move(values);
  return axis;
}

Axis Axis::of_labels(std::string name, std::vector<std::string> labels) {
  Axis axis;
  axis.name = std::move(name);
  axis.values.assign(labels.size(), std::numeric_limits<double>::quiet_NaN());
  axis.labels = std::move(labels);
  return axis;
}

std::size_t SweepSpec::cell_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.size();
  return n;
}

std::size_t SweepSpec::axis_index(std::string_view name) const {
  for (std::size_t i = 0; i < axes.size(); ++i)
    if (axes[i].name == name) return i;
  IHBD_EXPECTS(!"unknown axis name");
  return 0;
}

void Accumulator::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  if (keep_samples_) samples_.push_back(x);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  // Samples survive a merge only when both sides retained a complete set;
  // otherwise the result degrades to moments-only rather than silently
  // reporting percentiles over a partial sample.
  const bool keep = keep_samples_ && samples_.size() == count_ &&
                    other.samples_.size() == other.count_;
  if (count_ == 0) {
    const bool my_keep = keep_samples_;
    *this = other;
    keep_samples_ = my_keep;
  } else {
    // Chan et al. pairwise moment combination.
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    if (keep)
      samples_.insert(samples_.end(), other.samples_.begin(),
                      other.samples_.end());
  }
  if (!keep) {
    samples_.clear();
    keep_samples_ = false;
  }
}

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Summary Accumulator::summary() const {
  if (!samples_.empty()) return summarize(samples_);
  Summary s;
  s.count = count_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  s.p50 = s.p90 = s.p99 = mean();
  return s;
}

std::size_t SweepResult::flat_index(const std::vector<std::size_t>& idx) const {
  IHBD_EXPECTS(idx.size() == spec.axes.size());
  std::size_t flat = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    IHBD_EXPECTS(idx[a] < spec.axes[a].size());
    flat = flat * spec.axes[a].size() + idx[a];
  }
  return flat;
}

SweepResult run_sweep(const SweepSpec& spec, const TrialFn& fn, int threads) {
  IHBD_EXPECTS(spec.trials > 0);
  IHBD_EXPECTS(!spec.axes.empty());
  for (const auto& axis : spec.axes) {
    IHBD_EXPECTS(axis.size() > 0);
    IHBD_EXPECTS(axis.values.size() == axis.labels.size());
  }

  SweepResult result;
  result.spec = spec;
  result.cells.resize(spec.cell_count());
  for (auto& cell : result.cells) cell.set_keep_samples(spec.keep_samples);

  const std::uint64_t trials = static_cast<std::uint64_t>(spec.trials);
  ThreadPool pool(threads);
  pool.parallel_for(result.cells.size(), [&](std::size_t cell) {
    // Decode the row-major cell index into per-axis levels.
    std::vector<std::size_t> idx(spec.axes.size());
    std::size_t rem = cell;
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      idx[a] = rem % spec.axes[a].size();
      rem /= spec.axes[a].size();
    }
    Accumulator& acc = result.cells[cell];
    for (int t = 0; t < spec.trials; ++t) {
      // One substream per (cell, trial): independent of scheduling.
      Rng rng = substream(spec.seed,
                          static_cast<std::uint64_t>(cell) * trials +
                              static_cast<std::uint64_t>(t));
      const Scenario scenario(spec, cell, idx, t);
      const double sample = fn(scenario, rng);
      if (!std::isnan(sample)) acc.add(sample);
    }
  });
  return result;
}

}  // namespace ihbd::runtime
