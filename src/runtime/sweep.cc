#include "src/runtime/sweep.h"

#include <cmath>

#include "src/common/contracts.h"
#include "src/common/table.h"
#include "src/runtime/shard.h"
#include "src/runtime/substream.h"

namespace ihbd::runtime {

Axis Axis::of_values(std::string name, std::vector<double> values,
                     const std::function<std::string(double)>& label_fn) {
  Axis axis;
  axis.name = std::move(name);
  axis.labels.reserve(values.size());
  for (const double v : values)
    axis.labels.push_back(label_fn ? label_fn(v) : Table::fmt(v));
  axis.values = std::move(values);
  return axis;
}

Axis Axis::of_labels(std::string name, std::vector<std::string> labels) {
  Axis axis;
  axis.name = std::move(name);
  axis.values.assign(labels.size(), std::numeric_limits<double>::quiet_NaN());
  axis.labels = std::move(labels);
  return axis;
}

std::size_t SweepSpec::cell_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.size();
  return n;
}

std::size_t SweepSpec::axis_index(std::string_view name) const {
  for (std::size_t i = 0; i < axes.size(); ++i)
    if (axes[i].name == name) return i;
  IHBD_EXPECTS(!"unknown axis name");
  return 0;
}

std::size_t flat_cell_index(const SweepSpec& spec,
                            const std::vector<std::size_t>& idx) {
  IHBD_EXPECTS(idx.size() == spec.axes.size());
  std::size_t flat = 0;
  for (std::size_t a = 0; a < idx.size(); ++a) {
    IHBD_EXPECTS(idx[a] < spec.axes[a].size());
    flat = flat * spec.axes[a].size() + idx[a];
  }
  return flat;
}

Rng trial_rng(const SweepSpec& spec, std::size_t cell, int trial) {
  return substream(spec.seed,
                   static_cast<std::uint64_t>(cell) *
                           static_cast<std::uint64_t>(spec.trials) +
                       static_cast<std::uint64_t>(trial));
}

namespace detail {

void validate_spec(const SweepSpec& spec) {
  IHBD_EXPECTS(spec.trials > 0);
  IHBD_EXPECTS(!spec.axes.empty());
  for (const auto& axis : spec.axes) {
    IHBD_EXPECTS(axis.size() > 0);
    IHBD_EXPECTS(axis.values.size() == axis.labels.size());
  }
}

std::vector<std::size_t> decode_cell(const SweepSpec& spec, std::size_t cell) {
  std::vector<std::size_t> idx(spec.axes.size());
  std::size_t rem = cell;
  for (std::size_t a = spec.axes.size(); a-- > 0;) {
    idx[a] = rem % spec.axes[a].size();
    rem /= spec.axes[a].size();
  }
  return idx;
}

}  // namespace detail

SweepResult run_sweep(const SweepSpec& spec, const TrialFn& fn, int threads,
                      ThreadPool* pool) {
  Accumulator init;
  init.set_keep_samples(spec.keep_samples);
  return run_sweep_reduce(
      spec, init, fn,
      [](Accumulator& acc, double sample) {
        if (!std::isnan(sample)) acc.add(sample);
      },
      threads, pool, &shard::accumulator_codec());
}

}  // namespace ihbd::runtime
