// Deterministic RNG substreams for parallel Monte-Carlo experiments.
//
// Two complements to Rng::jump()/long_jump():
//
//  * substream(seed, i)  — O(1), order-independent derivation of the i-th
//    stream from a master seed via splitmix64 key mixing. Any worker can
//    materialize any stream at any time, so sweep results are bit-stable
//    regardless of thread count or execution order. This is what the sweep
//    engine uses.
//
//  * SubstreamSeq — the textbook jump-based splitting: stream i is the
//    master generator advanced by i long-jumps (2^192 steps each), which
//    carries xoshiro's non-overlap guarantee. A cached cursor makes
//    sequential access O(1) amortized. Not thread-safe; intended for
//    single-threaded reproducibility baselines and tests.
#pragma once

#include <cstdint>

#include "src/common/rng.h"

namespace ihbd::runtime {

/// The i-th independent stream of a master seed. Bit-stable in (seed, i)
/// and safe to call concurrently from any thread.
Rng substream(std::uint64_t seed, std::uint64_t i);

/// Jump-based substream sequence with guaranteed non-overlapping streams.
class SubstreamSeq {
 public:
  explicit SubstreamSeq(std::uint64_t seed);

  /// Generator for stream `i` (the seed generator advanced i long-jumps).
  /// Sequential/non-decreasing access is O(1) amortized; going backwards
  /// restarts from the seed.
  Rng at(std::uint64_t i);

 private:
  std::uint64_t seed_;
  Rng cursor_;
  std::uint64_t cursor_index_ = 0;
};

}  // namespace ihbd::runtime
