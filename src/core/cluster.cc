#include "src/core/cluster.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::core {

using ocstrx::OcsPath;

InfiniteHbdCluster::InfiniteHbdCluster(const Config& config)
    : config_(config),
      topo_(config.node_count, config.gpus_per_node, config.k, config.ring),
      faulty_(static_cast<std::size_t>(config.node_count), false),
      rng_(config.seed) {
  // Wiring convention (see bundle_for_hop): externals need
  // ceil(2K / 2) = K bundles, plus we keep the remaining GPU-pair bundles
  // (up to R) for loopback/DAC use per Fig. 5.
  const int needed_bundles = std::max(2, config.k);
  if (needed_bundles > config.gpus_per_node)
    throw ConfigError("K too large for the node's bundle count (K <= R)");
  fabrics_.reserve(static_cast<std::size_t>(config.node_count));
  for (int n = 0; n < config.node_count; ++n) {
    fabrics_.emplace_back(config.gpus_per_node, config.gpus_per_node,
                          config.trx_per_bundle, config.trx);
  }
}

std::pair<int, OcsPath> InfiniteHbdCluster::bundle_for_hop(
    int signed_hop) const {
  const int h = std::abs(signed_hop);
  IHBD_EXPECTS(h >= 1 && h <= config_.k);
  // bundle 0: forward (+1 primary / +2 backup); bundle 1: backward
  // (-1 / -2); bundle 2 (K=3): +3 primary / -3 backup.
  if (h <= 2) {
    const int bundle = signed_hop > 0 ? 0 : 1;
    return {bundle, h == 1 ? OcsPath::kExternal1 : OcsPath::kExternal2};
  }
  return {2, signed_hop > 0 ? OcsPath::kExternal1 : OcsPath::kExternal2};
}

void InfiniteHbdCluster::fail_node(int node) {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  faulty_[static_cast<std::size_t>(node)] = true;
  for (int b = 0; b < fabrics_[static_cast<std::size_t>(node)].bundle_count();
       ++b)
    fabrics_[static_cast<std::size_t>(node)].bundle(b).fail();
}

void InfiniteHbdCluster::repair_node(int node) {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  faulty_[static_cast<std::size_t>(node)] = false;
  for (int b = 0; b < fabrics_[static_cast<std::size_t>(node)].bundle_count();
       ++b)
    fabrics_[static_cast<std::size_t>(node)].bundle(b).repair();
}

bool InfiniteHbdCluster::node_faulty(int node) const {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  return faulty_[static_cast<std::size_t>(node)];
}

int InfiniteHbdCluster::faulty_node_count() const {
  return static_cast<int>(
      std::count(faulty_.begin(), faulty_.end(), true));
}

void InfiniteHbdCluster::steer_group_links(const topo::TpGroup& group,
                                           RingPlan& plan) {
  const int m = static_cast<int>(group.nodes.size());
  const int n = config_.node_count;
  auto steer = [&](int node, int bundle, OcsPath path) {
    auto latency = fabrics_[static_cast<std::size_t>(node)].bundle(bundle).steer(
        path, rng_, /*preloaded=*/true);
    IHBD_ENSURES(latency.has_value());
    plan.reconfig_latency_s = std::max(plan.reconfig_latency_s, *latency);
    ++plan.reconfigured_bundles;
  };

  for (int i = 0; i + 1 < m; ++i) {
    const int u = group.nodes[static_cast<std::size_t>(i)];
    const int v = group.nodes[static_cast<std::size_t>(i + 1)];
    int hop = v - u;
    if (config_.ring) {
      hop = ((hop % n) + n) % n;  // forward distance on the ring
    }
    IHBD_EXPECTS(hop >= 1 && hop <= config_.k);
    const auto [fwd_bundle, fwd_path] = bundle_for_hop(+hop);
    const auto [bwd_bundle, bwd_path] = bundle_for_hop(-hop);
    steer(u, fwd_bundle, fwd_path);
    steer(v, bwd_bundle, bwd_path);
    plan.links.push_back(LinkAssignment{u, v, hop, fwd_bundle, fwd_path});
  }

  // Close the GPU-level ring: the first node loops back its backward
  // bundle, the last node its forward bundle (Fig. 2's OCSTrx1(N1) /
  // OCSTrx2(N3) loopbacks).
  const int first = group.nodes.front();
  const int last = group.nodes.back();
  steer(first, bundle_for_hop(-1).first, OcsPath::kLoopback);
  steer(last, bundle_for_hop(+1).first, OcsPath::kLoopback);
}

RingPlan InfiniteHbdCluster::build_rings(int tp_size_gpus) {
  RingPlan plan;
  plan.allocation = topo_.allocate(faulty_, tp_size_gpus);

  // Park every healthy node's bundles in loopback first (§4.2: idle OCSTrx
  // operate in loopback mode), then activate the plan's links.
  for (int node = 0; node < config_.node_count; ++node) {
    if (!faulty_[static_cast<std::size_t>(node)])
      fabrics_[static_cast<std::size_t>(node)].park_all_loopback(rng_);
  }
  for (const auto& group : plan.allocation.groups)
    steer_group_links(group, plan);

  plan_ = plan;
  return plan;
}

BypassResult InfiniteHbdCluster::fail_and_bypass(int node) {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  BypassResult result;
  fail_node(node);

  // Locate the node inside the active plan.
  for (std::size_t g = 0; g < plan_.allocation.groups.size(); ++g) {
    auto& nodes = plan_.allocation.groups[g].nodes;
    auto it = std::find(nodes.begin(), nodes.end(), node);
    if (it == nodes.end()) continue;
    result.ring_was_member = true;
    result.degraded_group = static_cast<int>(g);
    const auto idx = static_cast<std::size_t>(it - nodes.begin());

    auto steer = [&](int nd, int bundle, OcsPath path) {
      auto latency =
          fabrics_[static_cast<std::size_t>(nd)].bundle(bundle).steer(
              path, rng_, /*preloaded=*/true);
      if (latency)
        result.reconfig_latency_s =
            std::max(result.reconfig_latency_s, *latency);
    };

    if (idx == 0 || idx + 1 == nodes.size()) {
      // End node: the adjacent member becomes the new segment end and
      // closes the GPU ring with its loopback path.
      if (nodes.size() >= 2) {
        const int neighbor = idx == 0 ? nodes[1] : nodes[nodes.size() - 2];
        const int bundle = idx == 0 ? bundle_for_hop(-1).first
                                    : bundle_for_hop(+1).first;
        steer(neighbor, bundle, OcsPath::kLoopback);
        result.bypassed = true;
      }
    } else {
      const int u = nodes[idx - 1];
      const int w = nodes[idx + 1];
      const int n = config_.node_count;
      int hop = w - u;
      if (config_.ring) hop = ((hop % n) + n) % n;
      if (hop <= config_.k) {
        const auto [fb, fp] = bundle_for_hop(+hop);
        const auto [bb, bp] = bundle_for_hop(-hop);
        steer(u, fb, fp);
        steer(w, bb, bp);
        result.bypassed = true;
      }
    }
    nodes.erase(it);
    break;
  }
  return result;
}

double InfiniteHbdCluster::hbd_bandwidth_per_gpu_gbps(int node) const {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  return fabrics_[static_cast<std::size_t>(node)].external_bandwidth_gbps() /
         config_.gpus_per_node;
}

ocstrx::NodeFabricManager& InfiniteHbdCluster::fabric(int node) {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  return fabrics_[static_cast<std::size_t>(node)];
}

const ocstrx::NodeFabricManager& InfiniteHbdCluster::fabric(int node) const {
  IHBD_EXPECTS(node >= 0 && node < config_.node_count);
  return fabrics_[static_cast<std::size_t>(node)];
}

}  // namespace ihbd::core
