#include "src/core/scheduler.h"

#include <algorithm>

#include "src/common/contracts.h"
#include "src/common/error.h"

namespace ihbd::core {

ScheduleResult simulate_schedule(const topo::HbdArchitecture& arch,
                                 const fault::FaultTrace& trace,
                                 std::vector<JobRequest> jobs,
                                 double step_days) {
  IHBD_EXPECTS(step_days > 0.0);
  if (trace.node_count() != arch.node_count())
    throw ConfigError("trace/architecture node count mismatch");
  for (const auto& j : jobs) {
    if (j.gpu_count <= 0 || j.gpu_count % j.tp_size_gpus != 0)
      throw ConfigError("job GPU count must be a positive multiple of TP");
  }

  struct Live {
    JobRequest request;
    JobOutcome outcome;
    double remaining_days;
    bool was_running = false;
  };
  std::vector<Live> live;
  live.reserve(jobs.size());
  for (const auto& j : jobs) {
    Live l;
    l.request = j;
    l.outcome.id = j.id;
    l.outcome.submitted_day = 0.0;
    l.remaining_days = j.run_days;
    live.push_back(l);
  }

  ScheduleResult result;
  for (double day = 0.0; day < trace.duration_days(); day += step_days) {
    const auto mask = trace.faulty_at(day);
    // FIFO admission: walk jobs in order, admitting while capacity lasts.
    // Mixed TP sizes are approximated by checking each job's own TP-size
    // capacity against the GPUs already handed to jobs ahead of it.
    int used_gpus = 0;
    for (auto& l : live) {
      if (l.remaining_days <= 0.0) continue;
      const int usable =
          arch.allocate(mask, l.request.tp_size_gpus).usable_gpus;
      const bool fits = used_gpus + l.request.gpu_count <= usable;
      if (fits) {
        used_gpus += l.request.gpu_count;
        l.remaining_days -= step_days;
        result.goodput_gpu_days += l.request.gpu_count * step_days;
        if (!l.was_running) l.was_running = true;
        if (l.remaining_days <= 0.0)
          l.outcome.completed_day = day + step_days;
      } else {
        l.outcome.waiting_days += step_days;
        if (l.was_running) {
          ++l.outcome.preemptions;
          l.was_running = false;
        }
      }
    }
    result.offered_gpu_days += arch.total_gpus() * step_days;
  }

  for (auto& l : live) result.outcomes.push_back(l.outcome);
  return result;
}

}  // namespace ihbd::core
