#include "src/core/scheduler.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/contracts.h"
#include "src/common/error.h"
#include "src/evsim/engine.h"

namespace ihbd::core {

ScheduleResult simulate_schedule(const topo::HbdArchitecture& arch,
                                 const fault::FaultTrace& trace,
                                 std::vector<JobRequest> jobs,
                                 double step_days) {
  IHBD_EXPECTS(step_days > 0.0);
  if (trace.node_count() != arch.node_count())
    throw ConfigError("trace/architecture node count mismatch");
  for (const auto& j : jobs) {
    if (j.gpu_count <= 0 || j.gpu_count % j.tp_size_gpus != 0)
      throw ConfigError("job GPU count must be a positive multiple of TP");
  }

  struct Live {
    JobRequest request;
    JobOutcome outcome;
    double remaining_days;
    bool was_running = false;
  };
  std::vector<Live> live;
  live.reserve(jobs.size());
  for (const auto& j : jobs) {
    Live l;
    l.request = j;
    l.outcome.id = j.id;
    l.outcome.submitted_day = 0.0;
    l.remaining_days = j.run_days;
    live.push_back(l);
  }

  ScheduleResult result;
  for (double day = 0.0; day < trace.duration_days(); day += step_days) {
    const auto mask = trace.faulty_at(day);
    // FIFO admission: walk jobs in order, admitting while capacity lasts.
    // Mixed TP sizes are approximated by checking each job's own TP-size
    // capacity against the GPUs already handed to jobs ahead of it.
    int used_gpus = 0;
    for (auto& l : live) {
      if (l.remaining_days <= 0.0) continue;
      const int usable =
          arch.allocate(mask, l.request.tp_size_gpus).usable_gpus;
      const bool fits = used_gpus + l.request.gpu_count <= usable;
      if (fits) {
        used_gpus += l.request.gpu_count;
        l.remaining_days -= step_days;
        result.goodput_gpu_days += l.request.gpu_count * step_days;
        if (!l.was_running) l.was_running = true;
        if (l.remaining_days <= 0.0)
          l.outcome.completed_day = day + step_days;
      } else {
        l.outcome.waiting_days += step_days;
        if (l.was_running) {
          ++l.outcome.preemptions;
          l.was_running = false;
        }
      }
    }
    result.offered_gpu_days += arch.total_gpus() * step_days;
  }

  for (auto& l : live) result.outcomes.push_back(l.outcome);
  return result;
}

ScheduleResult simulate_schedule_events(const topo::HbdArchitecture& arch,
                                        const fault::FaultTrace& trace,
                                        std::vector<JobRequest> jobs,
                                        double step_days,
                                        EventScheduleStats* stats) {
  IHBD_EXPECTS(step_days > 0.0);
  if (trace.node_count() != arch.node_count())
    throw ConfigError("trace/architecture node count mismatch");
  for (const auto& j : jobs) {
    if (j.gpu_count <= 0 || j.gpu_count % j.tp_size_gpus != 0)
      throw ConfigError("job GPU count must be a positive multiple of TP");
  }

  struct Live {
    JobRequest request;
    JobOutcome outcome;
    double remaining_days;
    bool was_running = false;
    bool running = false;  ///< current decision's admission verdict
  };
  std::vector<Live> live;
  live.reserve(jobs.size());
  for (const auto& j : jobs) {
    Live l;
    l.request = j;
    l.outcome.id = j.id;
    l.outcome.submitted_day = 0.0;
    l.remaining_days = j.run_days;
    live.push_back(l);
  }

  // The oracle's day grid, enumerated with the identical serial `+= step`
  // accumulation (sample_days' documented contract) so day values match
  // the oracle's loop variable bit-for-bit.
  const std::vector<double> days = trace.sample_days(step_days);
  const std::size_t n_days = days.size();

  // A grid day is a mask-change decision point iff some fault/repair edge
  // first takes effect there (faulty_at picks up an edge at `day` from the
  // first sample >= day).
  std::vector<bool> mask_dirty(n_days, false);
  if (n_days > 0) mask_dirty[0] = true;
  for (const auto& tr : *trace.transition_timeline()) {
    const auto it = std::lower_bound(days.begin(), days.end(), tr.day);
    if (it != days.end())
      mask_dirty[static_cast<std::size_t>(it - days.begin())] = true;
  }

  EventScheduleStats local_stats;
  local_stats.grid_days = n_days;
  ScheduleResult result;
  const double total_gpus = arch.total_gpus();

  // One decision + its constant-decision span. Returns the next decision
  // index (n_days when the trace is exhausted).
  auto run_span = [&](std::size_t di) -> std::size_t {
    ++local_stats.decision_events;
    const auto mask = trace.faulty_at(days[di]);
    // Admission walk, identical to the oracle's per-day walk. usable_gpus
    // is a pure function of (mask, TP size): memoize per TP size so mixed
    // fleets cost one allocate() per distinct TP instead of one per job.
    std::unordered_map<int, int> usable_by_tp;
    int used_gpus = 0;
    for (auto& l : live) {
      if (l.remaining_days <= 0.0) continue;
      const auto memo = usable_by_tp.find(l.request.tp_size_gpus);
      int usable = 0;
      if (memo != usable_by_tp.end()) {
        usable = memo->second;
      } else {
        usable = arch.allocate(mask, l.request.tp_size_gpus).usable_gpus;
        ++local_stats.allocate_calls;
        usable_by_tp.emplace(l.request.tp_size_gpus, usable);
      }
      l.running = used_gpus + l.request.gpu_count <= usable;
      if (l.running) {
        used_gpus += l.request.gpu_count;
        l.was_running = true;
      } else if (l.was_running) {
        ++l.outcome.preemptions;
        l.was_running = false;
      }
    }

    // Replay the dense per-day accumulations (global goodput adds in the
    // oracle's day-major job order) until the decision could change: the
    // next mask-change day or the day after a running job completes.
    for (std::size_t x = di;; ++x) {
      bool completed = false;
      for (auto& l : live) {
        if (l.remaining_days <= 0.0) continue;
        if (l.running) {
          l.remaining_days -= step_days;
          result.goodput_gpu_days += l.request.gpu_count * step_days;
          if (l.remaining_days <= 0.0) {
            l.outcome.completed_day = days[x] + step_days;
            completed = true;
          }
        } else {
          l.outcome.waiting_days += step_days;
        }
      }
      result.offered_gpu_days += total_gpus * step_days;
      if (x + 1 >= n_days) return n_days;
      if (completed || mask_dirty[x + 1]) return x + 1;
    }
  };

  // Drive the spans as an event chain on the engine (time unit: days):
  // each decision event computes its span and schedules the next decision
  // at the exact grid day it lands on.
  evsim::Engine engine;
  std::function<void(std::size_t)> arm = [&](std::size_t di) {
    engine.schedule_at(days[di], [&, di](evsim::Engine&) {
      const std::size_t next = run_span(di);
      if (next < n_days) arm(next);
    });
  };
  if (n_days > 0) arm(0);
  engine.run();

  for (auto& l : live) result.outcomes.push_back(l.outcome);
  if (stats) *stats = local_stats;
  return result;
}

}  // namespace ihbd::core
