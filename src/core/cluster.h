// InfiniteHbdCluster: the public facade of the library.
//
// Ties together the OCSTrx transceiver state machines (src/ocstrx), the
// K-Hop Ring topology (src/topo) and fault handling into the API a
// downstream scheduler programs against:
//   - build variable-size GPU rings for TP groups (intra-node loopback at
//     the segment ends, K-hop external links in between),
//   - inject node faults and watch neighbors bypass them over backup
//     paths within the 60-80 us OCSTrx reconfiguration budget,
//   - inspect per-node OCSTrx sessions, bandwidth and allocation state.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ocstrx/fabric_manager.h"
#include "src/topo/hbd.h"
#include "src/topo/khop_ring.h"

namespace ihbd::core {

/// One activated inter-node link of a ring plan.
struct LinkAssignment {
  int from_node = 0;
  int to_node = 0;
  int hop = 0;           ///< ring distance spanned (1 = primary, >1 = backup)
  int from_bundle = 0;   ///< bundle index steering the egress
  ocstrx::OcsPath path = ocstrx::OcsPath::kExternal1;
};

/// Result of (re)building rings across the cluster.
struct RingPlan {
  topo::Allocation allocation;       ///< groups, usable/wasted GPU counts
  std::vector<LinkAssignment> links; ///< every activated external link
  double reconfig_latency_s = 0.0;   ///< max per-node switch latency
  int reconfigured_bundles = 0;
};

/// Result of reacting to a node fault while rings are active.
struct BypassResult {
  bool ring_was_member = false;  ///< the node was inside an active group
  bool bypassed = false;         ///< neighbors rerouted around it
  double reconfig_latency_s = 0.0;
  int degraded_group = -1;       ///< index of the group that lost the node
};

class InfiniteHbdCluster {
 public:
  struct Config {
    int node_count = 64;
    int gpus_per_node = 4;
    int k = 2;                ///< OCSTrx bundle count per direction (K-hop)
    int trx_per_bundle = 8;   ///< 8 x 800G = 6.4 Tbps per GPU pair
    bool ring = true;         ///< ring vs K-hop line topology
    ocstrx::TrxConfig trx;
    std::uint64_t seed = 1;
  };

  explicit InfiniteHbdCluster(const Config& config);

  const topo::KHopRing& topology() const { return topo_; }
  int node_count() const { return config_.node_count; }
  int gpus_per_node() const { return config_.gpus_per_node; }
  int total_gpus() const { return topo_.total_gpus(); }

  /// ---- fault lifecycle --------------------------------------------------
  void fail_node(int node);
  void repair_node(int node);
  bool node_faulty(int node) const;
  const std::vector<bool>& fault_mask() const { return faulty_; }
  int faulty_node_count() const;

  /// ---- ring construction -------------------------------------------------
  /// Build as many `tp_size_gpus`-sized rings as the healthy topology
  /// allows; steers every involved OCSTrx bundle (loopback at segment ends,
  /// K-hop external links inside) and parks unused bundles in loopback.
  RingPlan build_rings(int tp_size_gpus);

  /// The currently active plan (empty allocation before build_rings).
  const RingPlan& active_plan() const { return plan_; }

  /// ---- runtime fault bypass ----------------------------------------------
  /// Fail `node` and, if it is inside an active group, steer its ring
  /// neighbors onto backup paths (possible when the resulting hop <= K).
  /// The group continues degraded (one node short). Falls back to
  /// `ring_broken` semantics when the gap exceeds K.
  BypassResult fail_and_bypass(int node);

  /// ---- introspection ------------------------------------------------------
  /// Per-GPU external HBD bandwidth currently deliverable (Gbit/s).
  double hbd_bandwidth_per_gpu_gbps(int node) const;
  ocstrx::NodeFabricManager& fabric(int node);
  const ocstrx::NodeFabricManager& fabric(int node) const;

  /// Map a hop (+h forward / -h backward, 1 <= h <= K) to the bundle and
  /// OCS path that serves it under this library's wiring convention:
  /// bundle 2(h-1) serves +h (External1) and +h+... see cluster.cc.
  std::pair<int, ocstrx::OcsPath> bundle_for_hop(int signed_hop) const;

 private:
  void steer_group_links(const topo::TpGroup& group, RingPlan& plan);

  Config config_;
  topo::KHopRing topo_;
  std::vector<ocstrx::NodeFabricManager> fabrics_;
  std::vector<bool> faulty_;
  RingPlan plan_;
  Rng rng_;
};

}  // namespace ihbd::core
