// Cluster-level job scheduling simulation on top of an HBD architecture.
//
// Generalizes the §6.2 "job fault-waiting time" evaluation: a queue of
// training jobs (TP size, GPU count, run length) is replayed against a
// fault trace on any HbdArchitecture. Jobs run when the architecture can
// place them (TP groups on healthy capacity); a fault burst that pushes
// usable capacity below the running set preempts the newest jobs back into
// the queue. Outputs per-job waiting/completion times and cluster
// goodput - the end-to-end consequence of each architecture's waste ratio.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/trace.h"
#include "src/topo/hbd.h"

namespace ihbd::core {

/// One training job in the queue.
struct JobRequest {
  int id = 0;
  int tp_size_gpus = 32;
  int gpu_count = 0;        ///< multiple of tp_size_gpus
  double run_days = 0.0;    ///< residual work, in days of full-speed running
};

/// Per-job outcome.
struct JobOutcome {
  int id = 0;
  double submitted_day = 0.0;
  double completed_day = -1.0;  ///< -1: not finished within the trace
  double waiting_days = 0.0;    ///< time spent queued or preempted
  int preemptions = 0;

  bool finished() const { return completed_day >= 0.0; }
};

struct ScheduleResult {
  std::vector<JobOutcome> outcomes;
  double goodput_gpu_days = 0.0;   ///< GPU-days of useful work executed
  double offered_gpu_days = 0.0;   ///< total capacity (GPUs x days)
  double utilization() const {
    return offered_gpu_days > 0.0 ? goodput_gpu_days / offered_gpu_days : 0.0;
  }
};

/// Simulate FIFO scheduling of `jobs` (all submitted at day 0) over the
/// fault trace on `arch`, stepping every `step_days`. Placement uses the
/// architecture's allocate(): a job runs in a step iff the jobs ahead of
/// it (running set) fit within the step's usable TP groups.
ScheduleResult simulate_schedule(const topo::HbdArchitecture& arch,
                                 const fault::FaultTrace& trace,
                                 std::vector<JobRequest> jobs,
                                 double step_days = 0.25);

/// Work counters for the event-driven scheduler (how much the event
/// formulation saved over the dense per-day oracle).
struct EventScheduleStats {
  std::uint64_t grid_days = 0;        ///< dense replay length
  std::uint64_t decision_events = 0;  ///< admission walks actually run
  std::uint64_t allocate_calls = 0;   ///< after per-decision TP memoization
};

/// Event-driven reformulation of simulate_schedule() on an evsim::Engine:
/// the admission walk (allocate() + FIFO fit, the expensive part) runs only
/// at *decision events* — grid days where the fault mask changed or a
/// running job just completed — because between two decisions the mask and
/// the active set are constant, so every per-day fit re-derivation is
/// redundant. Between decisions the per-day accumulation arithmetic
/// (remaining/waiting/goodput/offered) is replayed in the oracle's exact
/// order, making the result BIT-IDENTICAL to simulate_schedule() — same
/// doubles, same preemption counts — while allocate() calls drop from
/// O(days x jobs) to O(decisions x TP sizes). scheduler_test checks the
/// equivalence over a step/fault-rate regression grid; the control plane
/// (src/ctrl) builds its admission path on the same decision-event shape.
ScheduleResult simulate_schedule_events(const topo::HbdArchitecture& arch,
                                        const fault::FaultTrace& trace,
                                        std::vector<JobRequest> jobs,
                                        double step_days = 0.25,
                                        EventScheduleStats* stats = nullptr);

}  // namespace ihbd::core
