#!/usr/bin/env python3
"""Summarize bench_replay_micro results into BENCH_replay_micro.json.

Reads the vendored micro-bench harness's JSON export (the file named by
IHBD_MICROBENCH_JSON when running ./bench_replay_micro) and writes a
machine/core-stamped samples-per-second summary per replay tier, so
cross-PR perf regressions become diffable artifacts instead of log
archaeology. The headline speedups of the word-parallel packed tier over
the per-node incremental tier (same trace, same grid, single thread) are
derived into a `speedups` block.

Usage:
  summarize_replay_bench.py BENCH_replay.json [-o BENCH_replay_micro.json]

Mode is stamped from IHBD_MICROBENCH_MIN_TIME: the harness defaults to
0.05 s per benchmark ("full" for this suite); CI's quick mode passes a
smaller value and is labeled "quick" so its noisier numbers are never
mistaken for tracked ones.
"""

import argparse
import json
import os
import platform

# The harness default (bench/microbench.h min_seconds); anything below it
# is a deliberately shortened CI smoke run.
FULL_MIN_TIME_SECONDS = 0.05

# packed tier -> the PR 4/5 per-node incremental tier it is measured against
SPEEDUP_PAIRS = {
    "BM_replay_packed/8": "BM_replay_incremental/8",
    "BM_replay_packed/32": "BM_replay_incremental/32",
    "BM_replay_packed_quarter_day/32": "BM_replay_incremental_quarter_day/32",
    "BM_baseline_packed/0": "BM_baseline_island/0",
    "BM_baseline_packed/1": "BM_baseline_island/1",
    "BM_baseline_packed/2": "BM_baseline_island/2",
    "BM_baseline_packed/3": "BM_baseline_island/3",
    "BM_baseline_packed/4": "BM_baseline_island/4",
}


def min_time_seconds() -> float:
    try:
        return float(os.environ.get("IHBD_MICROBENCH_MIN_TIME", ""))
    except ValueError:
        return FULL_MIN_TIME_SECONDS


def summarize(results: list) -> dict:
    # Quick-mode or partial harness runs may omit entries or fields; every
    # lookup degrades gracefully (skip the entry) instead of raising, so
    # the artifact is still written for whatever DID run.
    tiers = {}
    skipped = 0
    for r in results if isinstance(results, list) else []:
        if not isinstance(r, dict):
            skipped += 1
            continue
        samples_per_s = r.get("counters", {}).get("samples/s")
        if samples_per_s is None:
            continue  # not a replay tier (no throughput counter)
        name = r.get("name")
        ns_per_iter = r.get("ns_per_iter")
        iterations = r.get("iterations")
        if name is None or ns_per_iter is None or iterations is None:
            skipped += 1
            continue
        tiers[name] = {
            "samples_per_s": round(samples_per_s, 1),
            "ns_per_iter": round(ns_per_iter, 1),
            "iterations": iterations,
        }
    if skipped:
        print(f"warning: skipped {skipped} malformed harness entries")
    speedups = {}
    for packed, base in SPEEDUP_PAIRS.items():
        if packed in tiers and base in tiers:
            base_rate = tiers[base]["samples_per_s"]
            if base_rate <= 0:
                continue
            speedups[f"{packed} vs {base}"] = round(
                tiers[packed]["samples_per_s"] / base_rate, 2)
    min_time = min_time_seconds()
    return {
        "bench": "bench_replay_micro",
        "machine": platform.machine(),
        "cores": os.cpu_count(),
        "mode": "full" if min_time >= FULL_MIN_TIME_SECONDS else "quick",
        "min_time_seconds": min_time,
        "tiers": tiers,
        "speedups": speedups,
    }


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Summarize bench_replay_micro JSON into a per-tier "
                    "samples/s artifact.")
    parser.add_argument("input", help="BENCH_replay.json from the harness")
    parser.add_argument("-o", "--output", default="BENCH_replay_micro.json")
    args = parser.parse_args()

    with open(args.input) as f:
        results = json.load(f)
    summary = summarize(results)
    with open(args.output, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"{args.output}: {len(summary['tiers'])} tiers "
          f"({summary['mode']} mode, {summary['machine']}, "
          f"{summary['cores']} cores)")


if __name__ == "__main__":
    main()
